/**
 * @file
 * Deterministic sharded event kernel (sim/shard.hh).
 *
 * The kernel's contract is that a sharded simulation executes, per
 * shard, exactly the event sequence of a serial run — for any worker
 * thread count. These tests pin that contract with synthetic
 * multi-shard topologies exercising cross-shard mailbox traffic,
 * conservative lookahead windows, and epoch barrier alignment.
 */

#include "tests/test_util.hh"

#include <atomic>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "sim/shard.hh"

namespace thynvm {
namespace {

/** One observed event: (shard, tick, payload). */
struct Obs
{
    unsigned shard;
    Tick tick;
    std::uint64_t payload;

    bool
    operator==(const Obs& o) const
    {
        return shard == o.shard && tick == o.tick && payload == o.payload;
    }
};

/**
 * A ring of shards passing a token: shard i logs the hop and forwards
 * it to shard (i+1)%K with latency @p hop_latency, until @p hops hops
 * have happened. Exercises post()/mailbox drain/window advance.
 */
std::vector<std::vector<Obs>>
runTokenRing(unsigned shards, unsigned threads, Tick hop_latency,
             std::uint64_t hops, int eot_mode = -1,
             std::uint64_t* windows_out = nullptr)
{
    std::vector<EventQueue> queues(shards);
    std::vector<std::vector<Obs>> logs(shards);
    ShardedKernel kernel;
    if (eot_mode >= 0)
        kernel.setEotWidening(eot_mode != 0);
    for (unsigned i = 0; i < shards; ++i)
        kernel.addShard("ring" + std::to_string(i), queues[i]);
    for (unsigned i = 0; i < shards; ++i)
        kernel.link(i, (i + 1) % shards, hop_latency);

    // The hop handler: log, then forward through the mailbox.
    std::function<void(unsigned, std::uint64_t)> hop =
        [&](unsigned shard, std::uint64_t count) {
            EventQueue& eq = queues[shard];
            logs[shard].push_back(Obs{shard, eq.now(), count});
            if (count + 1 >= hops)
                return;
            const unsigned next = (shard + 1) % shards;
            kernel.post(shard, next, eq.now() + hop_latency,
                        [&hop, next, count] { hop(next, count + 1); });
        };

    queues[0].schedule(100, [&hop] { hop(0, 0); });
    kernel.run(threads);
    if (windows_out != nullptr)
        *windows_out = kernel.windowsExecuted();
    return logs;
}

TEST(ShardKernel, TokenRingMatchesAnalyticSchedule)
{
    const Tick lat = 40 * kNanosecond;
    const auto logs = runTokenRing(4, 1, lat, 16);
    for (unsigned s = 0; s < 4; ++s)
        ASSERT_EQ(logs[s].size(), 4u) << "shard " << s;
    // Hop j lands on shard j%4 at tick 100 + j*lat.
    for (std::uint64_t j = 0; j < 16; ++j) {
        const unsigned shard = static_cast<unsigned>(j % 4);
        const Obs& o = logs[shard][j / 4];
        EXPECT_EQ(o.tick, 100 + j * lat);
        EXPECT_EQ(o.payload, j);
    }
}

TEST(ShardKernel, TokenRingIsThreadCountInvariant)
{
    const Tick lat = 40 * kNanosecond;
    const auto serial = runTokenRing(4, 1, lat, 64);
    for (unsigned threads : {2u, 4u, 8u}) {
        const auto parallel = runTokenRing(4, threads, lat, 64);
        EXPECT_EQ(parallel, serial) << "threads=" << threads;
    }
}

/**
 * Shards running independent seeded event chains with pseudo-random
 * spacing, all-to-all linked. Each chain folds its (tick, step) pairs
 * into a checksum; any divergence of event order or timing across
 * thread counts changes it.
 */
std::vector<std::uint64_t>
runJitterChains(unsigned shards, unsigned threads, std::uint64_t steps,
                int eot_mode = -1)
{
    std::vector<EventQueue> queues(shards);
    std::vector<std::uint64_t> sums(shards, 0);
    std::vector<Rng> rngs;
    for (unsigned i = 0; i < shards; ++i)
        rngs.emplace_back(0x5eed + i);

    ShardedKernel kernel;
    if (eot_mode >= 0)
        kernel.setEotWidening(eot_mode != 0);
    for (unsigned i = 0; i < shards; ++i)
        kernel.addShard("chain" + std::to_string(i), queues[i]);
    for (unsigned i = 0; i < shards; ++i) {
        for (unsigned j = 0; j < shards; ++j) {
            if (i != j)
                kernel.link(i, j, 10 * kNanosecond);
        }
    }
    kernel.setBarrierPeriod(500 * kNanosecond);

    std::function<void(unsigned, std::uint64_t)> step =
        [&](unsigned shard, std::uint64_t n) {
            EventQueue& eq = queues[shard];
            sums[shard] =
                sums[shard] * 1099511628211ull + eq.now() * 31 + n;
            if (n + 1 < steps) {
                eq.scheduleIn(rngs[shard].below(300) + 1,
                              [&step, shard, n] { step(shard, n + 1); });
            }
        };
    for (unsigned i = 0; i < shards; ++i) {
        queues[i].schedule(i * 7, [&step, i] { step(i, 0); });
    }
    kernel.run(threads);
    return sums;
}

TEST(ShardKernel, JitterChainsAreThreadCountInvariant)
{
    const auto serial = runJitterChains(6, 1, 400);
    for (unsigned threads : {2u, 4u, 8u}) {
        EXPECT_EQ(runJitterChains(6, threads, 400), serial)
            << "threads=" << threads;
    }
}

TEST(ShardKernel, MailboxDeliversAtExactTick)
{
    EventQueue a, b;
    ShardedKernel kernel;
    kernel.addShard("a", a);
    kernel.addShard("b", b);
    kernel.link(0, 1, 50);

    Tick delivered_at = 0;
    a.schedule(10, [&] {
        kernel.post(0, 1, a.now() + 123, [&] { delivered_at = b.now(); });
    });
    kernel.run(1);
    EXPECT_EQ(delivered_at, 133u);
}

TEST(ShardKernel, MessagesReviveAnIdleShard)
{
    EventQueue a, b;
    ShardedKernel kernel;
    kernel.addShard("a", a);
    kernel.addShard("b", b);
    kernel.link(0, 1, 50);

    // Shard b starts with an empty queue (idle immediately); a message
    // posted later must still run on it.
    int ran = 0;
    a.schedule(1000, [&] {
        kernel.post(0, 1, a.now() + 50, [&ran] { ++ran; });
    });
    kernel.run(2);
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(b.now(), 1050u);
}

TEST(ShardKernel, ZeroLookaheadLinkIsRejected)
{
    EventQueue a, b;
    ShardedKernel kernel;
    kernel.addShard("a", a);
    kernel.addShard("b", b);
    EXPECT_THROW(kernel.link(0, 1, 0), PanicError);
    EXPECT_THROW(kernel.link(0, 0, 10), PanicError);
    EXPECT_THROW(kernel.link(0, 7, 10), PanicError);
}

TEST(ShardKernel, PostOverUndeclaredLinkPanics)
{
    EventQueue a, b;
    ShardedKernel kernel;
    kernel.addShard("a", a);
    kernel.addShard("b", b);
    kernel.link(0, 1, 50);
    bool threw = false;
    b.schedule(10, [&] {
        try {
            kernel.post(1, 0, b.now() + 100, [] {});
        } catch (const PanicError&) {
            threw = true;
        }
    });
    kernel.run(1);
    EXPECT_TRUE(threw);
}

TEST(ShardKernel, ConservativeViolationPanics)
{
    EventQueue a, b;
    ShardedKernel kernel;
    kernel.addShard("a", a);
    kernel.addShard("b", b);
    kernel.link(0, 1, 50);
    // A message due *before* the end of the current window would race
    // the target shard; the kernel must refuse it.
    bool threw = false;
    a.schedule(10, [&] {
        try {
            kernel.post(0, 1, a.now() + 1, [] {});
        } catch (const PanicError&) {
            threw = true;
        }
    });
    kernel.run(1);
    EXPECT_TRUE(threw);
}

TEST(ShardKernel, CountsWindowsAndMessages)
{
    const Tick lat = 40 * kNanosecond;
    EventQueue a, b;
    ShardedKernel kernel;
    kernel.addShard("a", a);
    kernel.addShard("b", b);
    kernel.link(0, 1, lat);

    int delivered = 0;
    a.schedule(0, [&] {
        kernel.post(0, 1, lat, [&] { ++delivered; });
    });
    kernel.run(1);
    EXPECT_EQ(delivered, 1);
    EXPECT_EQ(kernel.messagesDelivered(), 1u);
    EXPECT_GE(kernel.windowsExecuted(), 2u);
}

/**
 * One shard with dense local work and an idle peer: with EOT widening
 * the idle shard's outbound path reports +infinity and the busy shard
 * is the sole actor, so the whole run collapses into one window; the
 * fixed-lookahead policy pays one window per lookahead quantum.
 * Returns windows executed; @p ticks_out collects the event ticks so
 * both modes can be compared for identical behavior.
 */
std::uint64_t
runBusyIdlePair(bool eot, Tick barrier_period,
                std::vector<Tick>* ticks_out = nullptr)
{
    EventQueue a, b;
    ShardedKernel kernel;
    kernel.setEotWidening(eot);
    kernel.addShard("busy", a);
    kernel.addShard("idle", b);
    kernel.link(0, 1, 40);
    kernel.link(1, 0, 40);
    kernel.setBarrierPeriod(barrier_period);

    // 1000 events, 40-tick spacing: 999 lookahead quanta of span.
    std::function<void(std::uint64_t)> chain = [&](std::uint64_t n) {
        if (ticks_out != nullptr)
            ticks_out->push_back(a.now());
        if (n + 1 < 1000)
            a.scheduleIn(40, [&chain, n] { chain(n + 1); });
    };
    a.schedule(0, [&chain] { chain(0); });
    kernel.run(1);
    return kernel.windowsExecuted();
}

TEST(ShardKernel, EotIdleLinkWidensToOneWindow)
{
    std::vector<Tick> on_ticks, off_ticks;
    const std::uint64_t on = runBusyIdlePair(true, 0, &on_ticks);
    const std::uint64_t off = runBusyIdlePair(false, 0, &off_ticks);
    // Sole actor, idle outbound path: the entire 40k-tick span is one
    // window. The fixed policy pays ~one window per 40-tick quantum.
    EXPECT_EQ(on, 1u);
    EXPECT_GE(off, 999u);
    // Identical executed schedule in both modes.
    EXPECT_EQ(on_ticks, off_ticks);
}

TEST(ShardKernel, EotWindowsClampToBarrierEdges)
{
    // Events at 0, 40, ..., 39960 with a 400-tick barrier period:
    // widening stops at every epoch edge, so exactly 100 windows of
    // 10 events each.
    EXPECT_EQ(runBusyIdlePair(true, 400), 100u);
}

TEST(ShardKernel, EotWideningNeverAdmitsInsideClosedWindow)
{
    // A lying EOT override ("I never send") widens the target's window
    // past the poster's actual send; the admission check must refuse
    // the message instead of letting it race the target.
    EventQueue a, b;
    ShardedKernel kernel;
    kernel.setEotWidening(true);
    kernel.addShard("a", a);
    kernel.addShard("b", b);
    kernel.link(0, 1, 50);
    b.schedule(500, [] {}); // b busy too: no sole-actor bypass
    kernel.setEotFn(0, [] { return kMaxTick; });
    bool threw = false;
    a.schedule(10, [&] {
        try {
            kernel.post(0, 1, a.now() + 50, [] {});
        } catch (const PanicError&) {
            threw = true;
        }
    });
    kernel.run(1);
    EXPECT_TRUE(threw);
}

TEST(ShardKernel, EotHonestBoundAdmitsExactlyAtWindowEnd)
{
    // The honest default EOT (next event + outbound lookahead) floors
    // the target's window at exactly the earliest possible send: a
    // post at that bound is accepted and delivered on time.
    EventQueue a, b;
    ShardedKernel kernel;
    kernel.setEotWidening(true);
    kernel.addShard("a", a);
    kernel.addShard("b", b);
    kernel.link(0, 1, 50);
    b.schedule(500, [] {});
    Tick delivered_at = 0;
    a.schedule(10, [&] {
        kernel.post(0, 1, a.now() + 50, [&] { delivered_at = b.now(); });
    });
    kernel.run(1);
    EXPECT_EQ(delivered_at, 60u);
}

TEST(ShardKernel, EotTokenRingWindowCountRegression)
{
    // One hop per window is the conservative floor for a token ring
    // (every hop is a cross-shard message); EOT widening must stay at
    // that floor instead of regressing to multiple windows per hop,
    // and must execute the identical schedule as the fixed policy.
    std::uint64_t on_windows = 0, off_windows = 0;
    const Tick lat = 40 * kNanosecond;
    const auto on = runTokenRing(4, 1, lat, 16, 1, &on_windows);
    const auto off = runTokenRing(4, 1, lat, 16, 0, &off_windows);
    EXPECT_EQ(on, off);
    EXPECT_LE(on_windows, 18u);
    EXPECT_LE(on_windows, off_windows);
}

TEST(ShardKernel, JitterChainsMatchAcrossEotModes)
{
    const auto widened = runJitterChains(6, 1, 400, 1);
    const auto fixed = runJitterChains(6, 1, 400, 0);
    EXPECT_EQ(widened, fixed);
    for (unsigned threads : {2u, 4u}) {
        EXPECT_EQ(runJitterChains(6, threads, 400, 1), widened)
            << "threads=" << threads;
    }
}

TEST(ShardKernel, DuplicateLinkDeclarationPanics)
{
    EventQueue a, b;
    ShardedKernel kernel;
    kernel.addShard("a", a);
    kernel.addShard("b", b);
    kernel.link(0, 1, 50);
    kernel.link(1, 0, 50);
    EXPECT_THROW(kernel.link(0, 1, 40), PanicError);
}

TEST(SpscRing, PushPopWrapAround)
{
    SpscRing<int> ring(4);
    EXPECT_EQ(ring.capacity(), 4u);
    for (int round = 0; round < 5; ++round) {
        for (int i = 0; i < 4; ++i)
            EXPECT_TRUE(ring.push(round * 10 + i));
        int extra = 99;
        EXPECT_FALSE(ring.push(std::move(extra))); // full
        for (int i = 0; i < 4; ++i) {
            int out = -1;
            EXPECT_TRUE(ring.pop(out));
            EXPECT_EQ(out, round * 10 + i);
        }
        int out = -1;
        EXPECT_FALSE(ring.pop(out)); // empty
    }
}

TEST(SpscRing, ConcurrentProducerConsumer)
{
    SpscRing<std::uint64_t> ring(64);
    const std::uint64_t n = 100000;
    std::atomic<bool> fail{false};
    std::thread consumer([&] {
        std::uint64_t expect = 0;
        while (expect < n) {
            std::uint64_t v;
            if (ring.pop(v)) {
                if (v != expect)
                    fail = true;
                ++expect;
            }
        }
    });
    for (std::uint64_t i = 0; i < n;) {
        std::uint64_t v = i;
        if (ring.push(std::move(v)))
            ++i;
    }
    consumer.join();
    EXPECT_FALSE(fail);
}

} // namespace
} // namespace thynvm
