/**
 * @file
 * Channel-topology equivalence tests.
 *
 * Two contracts are pinned here:
 *
 *  1. The single-channel topology (`channels = 1`) is bit-for-bit the
 *     seed machine: dumpStats() of representative micro / KV / SPEC
 *     runs across all seven SystemKinds must match goldens generated
 *     before the multi-channel topology existed
 *     (tests/goldens/channel_*.txt; regenerate only deliberately with
 *     THYNVM_UPDATE_GOLDENS=1).
 *
 *  2. A multi-channel System executes on per-channel kernel shards,
 *     and its dumpStats() and final tick are byte-identical to the
 *     serial (threads = 1) stepping of the same topology at every
 *     worker thread count.
 */

#include "tests/test_util.hh"

#include <cstdlib>
#include <fstream>
#include <iterator>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "harness/system.hh"
#include "workloads/kvstore.hh"
#include "workloads/micro.hh"
#include "workloads/spec.hh"

#ifndef THYNVM_GOLDEN_DIR
#define THYNVM_GOLDEN_DIR "tests/goldens"
#endif

namespace thynvm {
namespace {

/** Workload families pinned against goldens (one per bench family). */
enum class Family
{
    MicroRandom,
    KvHash,
    SpecGcc,
};

const char*
familyToken(Family f)
{
    switch (f) {
      case Family::MicroRandom: return "micro";
      case Family::KvHash: return "kv";
      case Family::SpecGcc: return "spec";
    }
    return "?";
}

const char*
kindToken(SystemKind kind)
{
    switch (kind) {
      case SystemKind::IdealDram: return "idealdram";
      case SystemKind::IdealNvm: return "idealnvm";
      case SystemKind::Journal: return "journal";
      case SystemKind::Shadow: return "shadow";
      case SystemKind::ThyNvm: return "thynvm";
      case SystemKind::Icl: return "icl";
      case SystemKind::Incremental: return "incremental";
    }
    return "?";
}

std::vector<SystemKind>
allKinds()
{
    return {std::begin(kAllSystemKinds), std::end(kAllSystemKinds)};
}

/** Small-but-real configuration so one run finishes in milliseconds. */
SystemConfig
smallConfig(SystemKind kind)
{
    SystemConfig cfg;
    cfg.kind = kind;
    // Pinned explicitly: the golden comparison must not be redirected
    // by a THYNVM_CHANNELS value in the environment (CI routes whole
    // test labels through multi-channel that way).
    cfg.channels = 1;
    cfg.phys_size = 4u << 20;
    cfg.epoch_length = 1 * kMillisecond;
    cfg.thynvm.btt_entries = 256;
    cfg.thynvm.ptt_entries = 512;
    return cfg;
}

std::unique_ptr<Workload>
makeWorkload(Family f)
{
    switch (f) {
      case Family::MicroRandom: {
          MicroWorkload::Params mp;
          mp.pattern = MicroWorkload::Pattern::Random;
          mp.base = 0;
          mp.array_bytes = 2u << 20;
          mp.access_size = 64;
          mp.read_fraction = 0.5;
          mp.total_accesses = 4000;
          mp.seed = 1;
          return std::make_unique<MicroWorkload>(mp);
      }
      case Family::KvHash: {
          KvWorkload::Params kp;
          kp.structure = KvWorkload::Structure::HashTable;
          kp.phys_size = 4u << 20;
          kp.value_size = 64;
          kp.initial_keys = 128;
          kp.key_space = 512;
          kp.hash_buckets = 512;
          kp.total_txns = 300;
          kp.compute_per_txn = 50;
          kp.seed = 7;
          return std::make_unique<KvWorkload>(kp);
      }
      case Family::SpecGcc: {
          SpecProfile prof = specProfile("gcc");
          prof.wss = 2u << 20; // shrink the footprint to the test system
          return std::make_unique<SpecWorkload>(prof, 0, 60000, 3);
      }
    }
    fatal("unreachable workload family");
}

struct RunResult
{
    std::string stats;
    Tick final_tick = 0;
    bool finished = false;
};

RunResult
runOne(Family f, const SystemConfig& cfg)
{
    auto wl = makeWorkload(f);
    System sys(cfg, *wl);
    sys.start();
    RunResult r;
    r.final_tick = sys.run(20 * kSecond);
    r.finished = sys.finished();
    std::ostringstream os;
    sys.dumpStats(os);
    r.stats = os.str();
    return r;
}

std::string
goldenPath(Family f, SystemKind kind)
{
    return std::string(THYNVM_GOLDEN_DIR) + "/channel_" +
           familyToken(f) + "_" + kindToken(kind) + ".txt";
}

/**
 * channels=1 must remain the seed topology, byte for byte: compare
 * dumpStats against goldens generated before multi-channel support.
 */
TEST(ChannelEquivalence, SingleChannelMatchesPreChangeGoldens)
{
    const bool update =
        std::getenv("THYNVM_UPDATE_GOLDENS") != nullptr;
    for (SystemKind kind : allKinds()) {
        for (Family f :
             {Family::MicroRandom, Family::KvHash, Family::SpecGcc}) {
            const RunResult r = runOne(f, smallConfig(kind));
            ASSERT_TRUE(r.finished)
                << familyToken(f) << "/" << kindToken(kind);
            const std::string path = goldenPath(f, kind);
            if (update) {
                std::ofstream out(path, std::ios::binary);
                ASSERT_TRUE(out.good()) << "cannot write " << path;
                out << "final_tick=" << r.final_tick << "\n" << r.stats;
                continue;
            }
            std::ifstream in(path, std::ios::binary);
            ASSERT_TRUE(in.good())
                << "missing golden " << path
                << " (generate with THYNVM_UPDATE_GOLDENS=1)";
            std::ostringstream want;
            want << in.rdbuf();
            std::ostringstream got;
            got << "final_tick=" << r.final_tick << "\n" << r.stats;
            EXPECT_EQ(got.str(), want.str())
                << "channels=1 diverged from the pre-change topology: "
                << path;
        }
    }
}

/**
 * The tentpole determinism contract: a multi-channel topology (each
 * channel its own kernel shard) produces byte-identical dumpStats and
 * final ticks at every worker thread count, for every channel count
 * and every system kind.
 */
TEST(ChannelEquivalence, MultiChannelDeterministicAcrossThreadCounts)
{
    for (SystemKind kind : allKinds()) {
        for (unsigned channels : {2u, 4u}) {
            SystemConfig cfg = smallConfig(kind);
            cfg.channels = channels;
            // Short epochs so the run crosses several coordinated
            // boundaries (the micro run lasts ~600 us of sim time).
            cfg.epoch_length = 100 * kMicrosecond;
            cfg.sim_threads = 1;
            const RunResult serial = runOne(Family::MicroRandom, cfg);
            ASSERT_TRUE(serial.finished)
                << kindToken(kind) << " channels=" << channels;
            for (unsigned threads : {2u, 4u}) {
                cfg.sim_threads = threads;
                const RunResult par = runOne(Family::MicroRandom, cfg);
                EXPECT_EQ(par.final_tick, serial.final_tick)
                    << kindToken(kind) << " channels=" << channels
                    << " threads=" << threads;
                EXPECT_EQ(par.stats, serial.stats)
                    << kindToken(kind) << " channels=" << channels
                    << " threads=" << threads
                    << ": sharded run diverged from the one-worker "
                       "schedule";
            }
        }
    }
}

/** Scoped environment override (nullptr clears); the previous value
 *  is restored on destruction. */
struct EnvGuard
{
    EnvGuard(const char* name, const char* value) : name_(name)
    {
        if (const char* old = std::getenv(name)) {
            had_old_ = true;
            old_ = old;
        }
        if (value != nullptr)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }
    ~EnvGuard()
    {
        if (had_old_)
            ::setenv(name_, old_.c_str(), 1);
        else
            ::unsetenv(name_);
    }
    const char* name_;
    std::string old_;
    bool had_old_ = false;
};

/**
 * Earliest-output-time window widening is host-side scheduling only:
 * for every channel count and worker count, a run with widening on is
 * byte-identical (dumpStats and final tick) to the same run under the
 * THYNVM_NO_EOT fixed-lookahead fallback.
 */
TEST(ChannelEquivalence, EotModesByteIdenticalAcrossChannelsAndThreads)
{
    for (unsigned channels : {1u, 2u, 4u}) {
        SystemConfig cfg = smallConfig(SystemKind::ThyNvm);
        cfg.channels = channels;
        cfg.epoch_length = 100 * kMicrosecond;
        RunResult widened;
        {
            EnvGuard on("THYNVM_NO_EOT", nullptr); // widening on
            cfg.sim_threads = 1;
            widened = runOne(Family::MicroRandom, cfg);
        }
        ASSERT_TRUE(widened.finished) << "channels=" << channels;
        EnvGuard off("THYNVM_NO_EOT", "1");
        for (unsigned threads : {1u, 2u, 4u}) {
            cfg.sim_threads = threads;
            const RunResult narrow = runOne(Family::MicroRandom, cfg);
            EXPECT_TRUE(narrow.finished)
                << "channels=" << channels << " threads=" << threads;
            EXPECT_EQ(narrow.final_tick, widened.final_tick)
                << "channels=" << channels << " threads=" << threads;
            EXPECT_EQ(narrow.stats, widened.stats)
                << "channels=" << channels << " threads=" << threads
                << ": THYNVM_NO_EOT=1 diverged from the widened run";
        }
    }
}

/**
 * Channel scaling sanity on the checkpointing kinds: the workload
 * still completes, epochs commit through the cross-channel
 * coordinator, and per-channel traffic sums stay consistent with the
 * group roll-up.
 */
TEST(ChannelEquivalence, CoordinatedEpochsComplete)
{
    for (SystemKind kind : kAllSystemKinds) {
        if (!isCheckpointingKind(kind))
            continue;
        SystemConfig cfg = smallConfig(kind);
        cfg.channels = 2;
        cfg.epoch_length = 100 * kMicrosecond;
        cfg.sim_threads = 2;
        auto wl = makeWorkload(Family::MicroRandom);
        System sys(cfg, *wl);
        sys.start();
        sys.run(20 * kSecond);
        ASSERT_TRUE(sys.finished()) << kindToken(kind);
        const RunMetrics m = sys.metrics();
        EXPECT_GT(m.epochs, 0u) << kindToken(kind);
        // The group's roll-up equals the sum over its channels.
        auto& grp = sys.controller();
        std::uint64_t per_ch = 0;
        for (unsigned i = 0; i < sys.channels(); ++i) {
            // dumpExtraStats covers the dump path; here cross-check
            // the metric virtuals against the devices directly.
            per_ch += static_cast<ChannelGroup&>(grp)
                          .channelController(i)
                          .nvmTotalWriteBytes();
        }
        EXPECT_EQ(m.nvm_wr_total, per_ch) << kindToken(kind);
    }
}

} // namespace
} // namespace thynvm
