/**
 * @file
 * Targeted tests for the ThyNVM overflow buffer: spill, coalescing,
 * incremental logging across backup-area toggles, retirement to Home,
 * back-pressure, and crash recovery of buffered blocks.
 */

#include "tests/test_util.hh"

#include "core/thynvm_controller.hh"

namespace thynvm {
namespace {

using test::loadBlock;
using test::patternBlock;
using test::storeBlock;

ThyNvmConfig
tinyConfig()
{
    ThyNvmConfig cfg;
    cfg.phys_size = 256 * 1024;
    cfg.btt_entries = 4;
    cfg.ptt_entries = 2;
    cfg.overflow_entries = 32;
    cfg.overflow_stall_watermark = 24;
    cfg.epoch_length = 500 * kMicrosecond;
    cfg.promote_threshold = 1000; // keep everything on the block path
    return cfg;
}

struct OverflowTest : public ::testing::Test
{
    OverflowTest() { rebuild(nullptr); }

    void
    rebuild(std::shared_ptr<BackingStore> nvm)
    {
        ctrl = std::make_unique<ThyNvmController>(eq, "ctrl",
                                                  tinyConfig(), nvm);
    }

    void
    checkpoint()
    {
        const auto epochs = ctrl->completedEpochs();
        ctrl->requestEpochEnd();
        eq.runUntil([&] {
            return ctrl->completedEpochs() >= epochs + 1 &&
                   !ctrl->checkpointInProgress();
        });
    }

    void
    crashAndRecover()
    {
        auto nvm = ctrl->nvmStoreHandle();
        ctrl->crash();
        eq.clear();
        rebuild(nvm);
        bool done = false;
        ctrl->recover([&] { done = true; });
        eq.runUntil([&] { return done; });
        ctrl->start();
    }

    double stat(const char* name) { return ctrl->stats().value(name); }

    EventQueue eq;
    std::unique_ptr<ThyNvmController> ctrl;
};

TEST_F(OverflowTest, SpillBeyondBttStaysVisible)
{
    ctrl->start();
    for (unsigned i = 0; i < 12; ++i)
        storeBlock(eq, *ctrl, i * kPageSize, patternBlock(i));
    EXPECT_GT(stat("overflow_blocks"), 0.0);
    for (unsigned i = 0; i < 12; ++i)
        EXPECT_EQ(loadBlock(eq, *ctrl, i * kPageSize), patternBlock(i));
}

TEST_F(OverflowTest, OverflowStoresCoalesce)
{
    ctrl->start();
    // Fill the BTT, then hammer one spilled block.
    for (unsigned i = 0; i < 6; ++i)
        storeBlock(eq, *ctrl, i * kPageSize, patternBlock(i));
    for (unsigned v = 0; v < 5; ++v)
        storeBlock(eq, *ctrl, 10 * kPageSize, patternBlock(100 + v));
    EXPECT_EQ(loadBlock(eq, *ctrl, 10 * kPageSize), patternBlock(104));
}

TEST_F(OverflowTest, BufferedBlocksSurviveCrashAfterCommit)
{
    ctrl->start();
    for (unsigned i = 0; i < 12; ++i)
        storeBlock(eq, *ctrl, i * kPageSize, patternBlock(i));
    checkpoint();
    crashAndRecover();
    for (unsigned i = 0; i < 12; ++i)
        EXPECT_EQ(loadBlock(eq, *ctrl, i * kPageSize), patternBlock(i));
}

TEST_F(OverflowTest, UnchangedEntriesSurviveMultipleToggles)
{
    ctrl->start();
    // Create spilled blocks, then run several empty checkpoints so the
    // incremental log skips them repeatedly across both backup areas.
    for (unsigned i = 0; i < 12; ++i)
        storeBlock(eq, *ctrl, i * kPageSize, patternBlock(i));
    for (unsigned e = 0; e < 5; ++e)
        checkpoint();
    crashAndRecover();
    for (unsigned i = 0; i < 12; ++i)
        EXPECT_EQ(loadBlock(eq, *ctrl, i * kPageSize), patternBlock(i));
}

TEST_F(OverflowTest, RetirementDrainsBufferToHome)
{
    ctrl->start();
    for (unsigned i = 0; i < 12; ++i)
        storeBlock(eq, *ctrl, i * kPageSize, patternBlock(i));
    // First checkpoint logs the spilled blocks; the second retires
    // them home; later ones leave the buffer empty.
    checkpoint();
    checkpoint();
    checkpoint();
    EXPECT_GT(ctrl->nvm().writeBytes(TrafficSource::Migration), 0u);
    for (unsigned i = 0; i < 12; ++i)
        EXPECT_EQ(loadBlock(eq, *ctrl, i * kPageSize), patternBlock(i));
    // After retirement, the data must be durable at home even across
    // a crash with no overflow log entries.
    crashAndRecover();
    for (unsigned i = 0; i < 12; ++i)
        EXPECT_EQ(loadBlock(eq, *ctrl, i * kPageSize), patternBlock(i));
}

TEST_F(OverflowTest, RewrittenEntryRelogsCurrentData)
{
    ctrl->start();
    for (unsigned i = 0; i < 12; ++i)
        storeBlock(eq, *ctrl, i * kPageSize, patternBlock(i));
    checkpoint();
    // Rewrite one spilled block (it may be in the buffer or retired by
    // now; either path must carry the new value through commits).
    storeBlock(eq, *ctrl, 11 * kPageSize, patternBlock(999));
    checkpoint();
    crashAndRecover();
    EXPECT_EQ(loadBlock(eq, *ctrl, 11 * kPageSize), patternBlock(999));
}

TEST_F(OverflowTest, BackPressureStallsButCompletes)
{
    ctrl->start();
    // Exceed the stall watermark: stores must still complete (after
    // forced epochs recycle capacity) and keep their data.
    for (unsigned i = 0; i < 40; ++i)
        storeBlock(eq, *ctrl, i * 2 * kPageSize % (256 * 1024),
                   patternBlock(i));
    eq.runUntil([&] { return !ctrl->checkpointInProgress(); });
    EXPECT_GE(ctrl->completedEpochs(), 1u);
    for (unsigned i = 0; i < 40; ++i) {
        const Addr a = i * 2 * kPageSize % (256 * 1024);
        // Later stores may alias earlier addresses; recompute the last
        // writer of this address.
        unsigned last = i;
        for (unsigned j = i + 1; j < 40; ++j) {
            if (j * 2 * kPageSize % (256 * 1024) == a)
                last = j;
        }
        EXPECT_EQ(loadBlock(eq, *ctrl, a), patternBlock(last));
    }
}

TEST_F(OverflowTest, CrashBeforeFirstCommitLosesNothingCommitted)
{
    auto img = patternBlock(42);
    ctrl->loadImage(3 * kPageSize, img.data(), kBlockSize);
    ctrl->start();
    for (unsigned i = 0; i < 12; ++i)
        storeBlock(eq, *ctrl, i * kPageSize, patternBlock(i));
    // No checkpoint: everything rolls back to the initial image.
    crashAndRecover();
    EXPECT_EQ(loadBlock(eq, *ctrl, 3 * kPageSize), img);
    EXPECT_EQ(loadBlock(eq, *ctrl, 5 * kPageSize),
              (std::array<std::uint8_t, kBlockSize>{}));
}

} // namespace
} // namespace thynvm
