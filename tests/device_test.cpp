/**
 * @file
 * Unit tests for the memory device timing model, the staging port,
 * and the crash-precise durability semantics.
 */

#include "tests/test_util.hh"

#include "mem/port.hh"

namespace thynvm {
namespace {

using test::patternBlock;

DeviceParams
smallNvm()
{
    auto p = DeviceParams::nvm(1 << 20);
    return p;
}

TEST(DeviceTest, WriteThenReadReturnsData)
{
    EventQueue eq;
    MemDevice dev(eq, "dev", smallNvm());

    auto data = patternBlock(1);
    DeviceRequest wr;
    wr.addr = 128;
    wr.is_write = true;
    std::memcpy(wr.data.data(), data.data(), kBlockSize);
    ASSERT_TRUE(dev.enqueue(std::move(wr)));

    std::array<std::uint8_t, kBlockSize> out{};
    bool done = false;
    DeviceRequest rd;
    rd.addr = 128;
    rd.is_write = false;
    rd.on_complete = [&] { done = true; };
    ASSERT_TRUE(dev.enqueue(std::move(rd)));
    eq.runUntil([&] { return done; });
    dev.store().read(128, out.data(), kBlockSize);
    EXPECT_EQ(out, data);
}

TEST(DeviceTest, FunctionalWriteVisibleImmediately)
{
    EventQueue eq;
    MemDevice dev(eq, "dev", smallNvm());
    auto data = patternBlock(2);
    DeviceRequest wr;
    wr.addr = 0;
    wr.is_write = true;
    std::memcpy(wr.data.data(), data.data(), kBlockSize);
    ASSERT_TRUE(dev.enqueue(std::move(wr)));
    // The architectural view updates at enqueue, before service.
    std::array<std::uint8_t, kBlockSize> out{};
    dev.store().read(0, out.data(), kBlockSize);
    EXPECT_EQ(out, data);
}

TEST(DeviceTest, RowHitFasterThanMiss)
{
    EventQueue eq;
    MemDevice dev(eq, "dev", smallNvm());

    Tick t0 = 0, t1 = 0, t2 = 0;
    DeviceRequest r1;
    r1.addr = 0;
    r1.on_complete = [&] { t0 = eq.now(); };
    dev.enqueue(std::move(r1));
    eq.run();

    // Same row: hit.
    DeviceRequest r2;
    r2.addr = 64;
    r2.on_complete = [&] { t1 = eq.now(); };
    const Tick start1 = eq.now();
    dev.enqueue(std::move(r2));
    eq.run();

    // Different row, same bank (banks stride by row): miss.
    const auto& p = dev.params();
    DeviceRequest r3;
    r3.addr = p.row_size * p.banks; // same bank 0, different row
    r3.on_complete = [&] { t2 = eq.now(); };
    const Tick start2 = eq.now();
    dev.enqueue(std::move(r3));
    eq.run();

    const Tick hit_latency = t1 - start1;
    const Tick miss_latency = t2 - start2;
    EXPECT_LT(hit_latency, miss_latency);
    EXPECT_GE(hit_latency, p.row_hit_latency);
    EXPECT_GE(miss_latency, p.row_miss_clean_latency);
}

TEST(DeviceTest, DirtyMissCostsMore)
{
    EventQueue eq;
    MemDevice dev(eq, "dev", smallNvm());
    const auto& p = dev.params();

    // Open row 0 in bank 0 with a write -> dirty row buffer.
    DeviceRequest w;
    w.addr = 0;
    w.is_write = true;
    dev.enqueue(std::move(w));
    eq.run();

    // Read a different row in the same bank: dirty miss.
    Tick done_at = 0;
    DeviceRequest r;
    r.addr = p.row_size * p.banks;
    r.on_complete = [&] { done_at = eq.now(); };
    const Tick start = eq.now();
    dev.enqueue(std::move(r));
    eq.run();
    EXPECT_GE(done_at - start, p.row_miss_dirty_latency);
    EXPECT_EQ(dev.stats().value("row_misses_dirty"), 1.0);
}

TEST(DeviceTest, BankParallelismBeatsSerialization)
{
    EventQueue eq;
    MemDevice dev(eq, "dev", smallNvm());
    const auto& p = dev.params();

    // Two misses to different banks should overlap; two misses to the
    // same bank serialize.
    unsigned done = 0;
    for (unsigned i = 0; i < 2; ++i) {
        DeviceRequest r;
        r.addr = i * p.row_size; // different banks
        r.on_complete = [&] { ++done; };
        dev.enqueue(std::move(r));
    }
    const Tick start = eq.now();
    eq.runUntil([&] { return done == 2; });
    const Tick parallel_time = eq.now() - start;

    done = 0;
    for (unsigned i = 0; i < 2; ++i) {
        DeviceRequest r;
        // Same bank, alternating rows: every access misses.
        r.addr = i * p.row_size * p.banks + 2 * p.row_size * p.banks;
        r.on_complete = [&] { ++done; };
        dev.enqueue(std::move(r));
    }
    const Tick start2 = eq.now();
    eq.runUntil([&] { return done == 2; });
    const Tick serial_time = eq.now() - start2;

    EXPECT_LT(parallel_time, serial_time);
}

TEST(DeviceTest, QueueCapacityEnforced)
{
    EventQueue eq;
    auto p = smallNvm();
    p.read_queue_capacity = 2;
    MemDevice dev(eq, "dev", p);
    DeviceRequest a, b, c;
    a.addr = 0;
    b.addr = 64;
    c.addr = 128;
    EXPECT_TRUE(dev.enqueue(std::move(a)));
    EXPECT_TRUE(dev.enqueue(std::move(b)));
    EXPECT_FALSE(dev.canAccept(false));
    EXPECT_FALSE(dev.enqueue(std::move(c)));
    eq.run();
    EXPECT_TRUE(dev.canAccept(false));
}

TEST(DeviceTest, CrashRollsBackUnservicedWrites)
{
    EventQueue eq;
    MemDevice dev(eq, "dev", smallNvm());

    auto first = patternBlock(10);
    DeviceRequest w1;
    w1.addr = 256;
    w1.is_write = true;
    std::memcpy(w1.data.data(), first.data(), kBlockSize);
    dev.enqueue(std::move(w1));
    eq.run(); // w1 serviced -> durable

    auto second = patternBlock(11);
    DeviceRequest w2;
    w2.addr = 256;
    w2.is_write = true;
    std::memcpy(w2.data.data(), second.data(), kBlockSize);
    dev.enqueue(std::move(w2));
    // No eq.run(): w2 is still queued when power fails.
    dev.crash();

    std::array<std::uint8_t, kBlockSize> out{};
    dev.store().read(256, out.data(), kBlockSize);
    EXPECT_EQ(out, first);
}

TEST(DeviceTest, CrashRollsBackChainInReverseOrder)
{
    EventQueue eq;
    MemDevice dev(eq, "dev", smallNvm());

    auto a = patternBlock(20);
    auto b = patternBlock(21);
    auto c = patternBlock(22);
    for (const auto* d : {&a, &b, &c}) {
        DeviceRequest w;
        w.addr = 512;
        w.is_write = true;
        std::memcpy(w.data.data(), d->data(), kBlockSize);
        dev.enqueue(std::move(w));
    }
    dev.crash();
    std::array<std::uint8_t, kBlockSize> out{};
    dev.store().read(512, out.data(), kBlockSize);
    // All three were unserviced: the original zeros come back.
    EXPECT_EQ(out, (std::array<std::uint8_t, kBlockSize>{}));
}

TEST(DeviceTest, WritesDrainedNotification)
{
    EventQueue eq;
    MemDevice dev(eq, "dev", smallNvm());
    EXPECT_TRUE(dev.writesDrained());

    DeviceRequest w;
    w.addr = 0;
    w.is_write = true;
    dev.enqueue(std::move(w));
    EXPECT_FALSE(dev.writesDrained());

    bool drained = false;
    dev.notifyWhenWritesDrained([&] { drained = true; });
    eq.runUntil([&] { return drained; });
    EXPECT_TRUE(dev.writesDrained());
}

TEST(DeviceTest, WriteTrafficAttributedBySource)
{
    EventQueue eq;
    MemDevice dev(eq, "dev", smallNvm());
    DeviceRequest w1;
    w1.addr = 0;
    w1.is_write = true;
    w1.source = TrafficSource::Checkpoint;
    dev.enqueue(std::move(w1));
    DeviceRequest w2;
    w2.addr = 64;
    w2.is_write = true;
    w2.source = TrafficSource::Migration;
    dev.enqueue(std::move(w2));
    eq.run();
    EXPECT_EQ(dev.writeBytes(TrafficSource::Checkpoint), kBlockSize);
    EXPECT_EQ(dev.writeBytes(TrafficSource::Migration), kBlockSize);
    EXPECT_EQ(dev.totalWriteBytes(), 2 * kBlockSize);
}

TEST(PortTest, StagesBeyondDeviceCapacity)
{
    EventQueue eq;
    auto p = smallNvm();
    p.write_queue_capacity = 4;
    p.write_drain_high = 3;
    p.write_drain_low = 1;
    MemDevice dev(eq, "dev", p);
    DevicePort port(dev);

    unsigned accepted = 0;
    for (unsigned i = 0; i < 64; ++i) {
        DeviceRequest w;
        w.addr = i * kBlockSize;
        w.is_write = true;
        auto data = patternBlock(i);
        std::memcpy(w.data.data(), data.data(), kBlockSize);
        port.send(std::move(w), [&] { ++accepted; });
    }
    bool all_durable = false;
    port.notifyWhenWritesDurable([&] { all_durable = true; });
    eq.runUntil([&] { return all_durable; });
    EXPECT_EQ(accepted, 64u);
    EXPECT_EQ(dev.totalWriteBytes(), 64 * kBlockSize);
}

TEST(PortTest, FunctionalReadSeesStagedWrites)
{
    EventQueue eq;
    auto p = smallNvm();
    p.write_queue_capacity = 2;
    p.write_drain_high = 1; // force staging... high must be > low
    p.write_drain_low = 0;
    MemDevice dev(eq, "dev", p);
    DevicePort port(dev);

    // Fill the device queue so later writes stage in the port FIFO.
    std::array<std::uint8_t, kBlockSize> expected{};
    for (unsigned i = 0; i < 8; ++i) {
        DeviceRequest w;
        w.addr = 0;
        w.is_write = true;
        auto data = patternBlock(100 + i);
        expected = data;
        std::memcpy(w.data.data(), data.data(), kBlockSize);
        port.send(std::move(w));
    }
    std::array<std::uint8_t, kBlockSize> out{};
    port.functionalRead(0, out.data(), kBlockSize);
    EXPECT_EQ(out, expected); // newest staged write wins
}

TEST(PortTest, CrashDropsStagedRequests)
{
    EventQueue eq;
    auto p = smallNvm();
    p.write_queue_capacity = 2;
    p.write_drain_high = 1;
    p.write_drain_low = 0;
    MemDevice dev(eq, "dev", p);
    DevicePort port(dev);
    for (unsigned i = 0; i < 8; ++i) {
        DeviceRequest w;
        w.addr = 64 * i;
        w.is_write = true;
        auto data = patternBlock(i);
        std::memcpy(w.data.data(), data.data(), kBlockSize);
        port.send(std::move(w));
    }
    port.crash();
    dev.crash();
    // Nothing was serviced: the store must be all zeros.
    std::array<std::uint8_t, kBlockSize> out{};
    for (unsigned i = 0; i < 8; ++i) {
        dev.store().read(64 * i, out.data(), kBlockSize);
        EXPECT_EQ(out, (std::array<std::uint8_t, kBlockSize>{}));
    }
}

TEST(PortTest, DurabilityOrderingForCommitRecords)
{
    // The protocol pattern: stage data writes, wait for durability,
    // then stage the commit record. After the wait fires, all data
    // writes must have been serviced.
    EventQueue eq;
    auto p = smallNvm();
    p.write_queue_capacity = 4;
    p.write_drain_high = 3;
    p.write_drain_low = 1;
    MemDevice dev(eq, "dev", p);
    DevicePort port(dev);

    for (unsigned i = 0; i < 32; ++i) {
        DeviceRequest w;
        w.addr = i * kBlockSize;
        w.is_write = true;
        port.send(std::move(w));
    }
    bool data_durable = false;
    port.notifyWhenWritesDurable([&] { data_durable = true; });
    eq.runUntil([&] { return data_durable; });
    EXPECT_EQ(dev.totalWriteBytes(), 32 * kBlockSize);
    EXPECT_TRUE(dev.writesDrained());
}

} // namespace
} // namespace thynvm
