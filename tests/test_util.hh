/**
 * @file
 * Shared helpers for the ThyNVM test suite.
 */

#ifndef THYNVM_TESTS_TEST_UTIL_HH
#define THYNVM_TESTS_TEST_UTIL_HH

#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "common/types.hh"
#include "mem/controller.hh"
#include "sim/eventq.hh"

namespace thynvm {
namespace test {

/** A 64-byte block filled with a deterministic pattern of @p tag. */
inline std::array<std::uint8_t, kBlockSize>
patternBlock(std::uint64_t tag)
{
    std::array<std::uint8_t, kBlockSize> data{};
    std::uint64_t v = tag * 0x9e3779b97f4a7c15ULL + 1;
    for (std::size_t i = 0; i < kBlockSize; ++i) {
        data[i] = static_cast<std::uint8_t>(v >> ((i % 8) * 8));
        if (i % 8 == 7)
            v = v * 6364136223846793005ULL + 1442695040888963407ULL;
    }
    return data;
}

/**
 * Synchronous store through a controller: issues the access and runs
 * the event queue until the posted-write acknowledgment.
 */
inline void
storeBlock(EventQueue& eq, MemController& ctrl, Addr paddr,
           const std::array<std::uint8_t, kBlockSize>& data)
{
    bool done = false;
    ctrl.accessBlock(paddr, true, data.data(), nullptr,
                     TrafficSource::CpuWriteback, [&done] { done = true; });
    eq.runUntil([&done] { return done; });
}

/** Synchronous load through a controller. */
inline std::array<std::uint8_t, kBlockSize>
loadBlock(EventQueue& eq, MemController& ctrl, Addr paddr)
{
    std::array<std::uint8_t, kBlockSize> data{};
    bool done = false;
    ctrl.accessBlock(paddr, false, nullptr, data.data(),
                     TrafficSource::DemandRead, [&done] { done = true; });
    eq.runUntil([&done] { return done; });
    return data;
}

/**
 * Seed for a randomized test. Never std::random_device: every failure
 * must be replayable. The default is logged so a failing run can be
 * reproduced, and THYNVM_TEST_SEED overrides it for sweeps.
 */
inline std::uint64_t
loggedSeed(const char* name, std::uint64_t def)
{
    if (const char* env = std::getenv("THYNVM_TEST_SEED"))
        def = std::strtoull(env, nullptr, 10);
    std::printf("[   seed   ] %s = %llu (override with THYNVM_TEST_SEED)\n",
                name, static_cast<unsigned long long>(def));
    return def;
}

/** Run the queue until it is idle (drained) or @p limit is reached. */
inline void
settle(EventQueue& eq, Tick limit_delta = 100 * kMillisecond)
{
    eq.run(eq.now() + limit_delta);
}

/**
 * Scoped environment override (nullptr clears); the previous value is
 * restored on destruction. Constructed *before* the object that reads
 * the variable — stores, kernels, and fast-path switches all sample
 * their knobs at construction time.
 */
struct EnvGuard
{
    EnvGuard(const char* name, const char* value) : name_(name)
    {
        if (const char* old = std::getenv(name)) {
            had_old_ = true;
            old_ = old;
        }
        if (value != nullptr)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }
    ~EnvGuard()
    {
        if (had_old_)
            ::setenv(name_, old_.c_str(), 1);
        else
            ::unsetenv(name_);
    }
    const char* name_;
    std::string old_;
    bool had_old_ = false;
};

} // namespace test
} // namespace thynvm

#endif // THYNVM_TESTS_TEST_UTIL_HH
