/**
 * @file
 * Unit tests for the common utilities: types, logging, RNG, stats.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace thynvm {
namespace {

TEST(TypesTest, BlockAndPageAlignment)
{
    EXPECT_EQ(blockAlign(0), 0u);
    EXPECT_EQ(blockAlign(63), 0u);
    EXPECT_EQ(blockAlign(64), 64u);
    EXPECT_EQ(blockAlign(130), 128u);
    EXPECT_EQ(pageAlign(4095), 0u);
    EXPECT_EQ(pageAlign(4096), 4096u);
    EXPECT_EQ(pageAlign(8191), 4096u);
}

TEST(TypesTest, Indices)
{
    EXPECT_EQ(blockIndex(0), 0u);
    EXPECT_EQ(blockIndex(64), 1u);
    EXPECT_EQ(pageIndex(4096), 1u);
    EXPECT_EQ(blockInPage(4096 + 128), 2u);
    EXPECT_EQ(kBlocksPerPage, 64u);
}

TEST(TypesTest, RoundUpAndPow2)
{
    EXPECT_EQ(roundUp(0, 64), 0u);
    EXPECT_EQ(roundUp(1, 64), 64u);
    EXPECT_EQ(roundUp(64, 64), 64u);
    EXPECT_EQ(roundUp(65, 64), 128u);
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(4096));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(48));
}

TEST(TypesTest, TimeUnits)
{
    EXPECT_EQ(kNanosecond, 1000u);
    EXPECT_EQ(kMillisecond, 1000u * 1000u * 1000u);
    EXPECT_EQ(10 * kMillisecond, 10000000000ull);
}

TEST(LoggingTest, PanicThrows)
{
    EXPECT_THROW(panic("boom %d", 42), PanicError);
}

TEST(LoggingTest, FatalThrows)
{
    EXPECT_THROW(fatal("bad config"), FatalError);
}

TEST(LoggingTest, PanicIfConditional)
{
    EXPECT_NO_THROW(panic_if(false, "never"));
    EXPECT_THROW(panic_if(true, "always"), PanicError);
}

TEST(LoggingTest, FormatProducesMessage)
{
    try {
        panic("value=%d name=%s", 7, "x");
        FAIL() << "panic did not throw";
    } catch (const PanicError& e) {
        EXPECT_NE(std::string(e.what()).find("value=7 name=x"),
                  std::string::npos);
    }
}

TEST(RngTest, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(RngTest, BelowInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(RngTest, BelowCoversRange)
{
    Rng r(7);
    std::vector<int> hits(8, 0);
    for (int i = 0; i < 8000; ++i)
        ++hits[r.below(8)];
    for (int h : hits)
        EXPECT_GT(h, 500); // roughly uniform
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng r(3);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, RangeInclusive)
{
    Rng r(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        auto v = r.range(3, 5);
        ASSERT_GE(v, 3u);
        ASSERT_LE(v, 5u);
        saw_lo |= (v == 3);
        saw_hi |= (v == 5);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(StatsTest, ScalarOps)
{
    stats::Scalar s;
    EXPECT_EQ(s.value(), 0.0);
    ++s;
    s += 2.5;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s -= 0.5;
    EXPECT_DOUBLE_EQ(s.value(), 3.0);
    s.reset();
    EXPECT_EQ(s.value(), 0.0);
}

TEST(StatsTest, HistogramBasics)
{
    stats::Histogram h(4, 40.0); // buckets of width 10
    h.sample(5);
    h.sample(15);
    h.sample(15);
    h.sample(100); // overflow
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[1], 2u);
    EXPECT_DOUBLE_EQ(h.minValue(), 5.0);
    EXPECT_DOUBLE_EQ(h.maxValue(), 100.0);
    EXPECT_DOUBLE_EQ(h.mean(), (5 + 15 + 15 + 100) / 4.0);
}

TEST(StatsTest, GroupValuesAndFormulas)
{
    stats::Group g("unit");
    stats::Scalar a, b;
    g.addScalar("a", &a);
    g.addScalar("b", &b);
    g.addFormula("sum", [&] { return a.value() + b.value(); });
    a += 2;
    b += 3;
    EXPECT_DOUBLE_EQ(g.value("a"), 2.0);
    EXPECT_DOUBLE_EQ(g.value("sum"), 5.0);
    EXPECT_TRUE(g.has("sum"));
    EXPECT_FALSE(g.has("nope"));
    EXPECT_THROW(g.value("nope"), PanicError);
    auto all = g.values();
    EXPECT_EQ(all.size(), 3u);
    g.reset();
    EXPECT_DOUBLE_EQ(g.value("a"), 0.0);
}

} // namespace
} // namespace thynvm
