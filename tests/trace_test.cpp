/**
 * @file
 * Tests for memory-trace recording and replay.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "harness/system.hh"
#include "workloads/micro.hh"
#include "workloads/trace.hh"

namespace thynvm {
namespace {

MicroWorkload::Params
microParams()
{
    MicroWorkload::Params p;
    p.pattern = MicroWorkload::Pattern::Sliding;
    p.array_bytes = 256 * 1024;
    p.total_accesses = 500;
    p.seed = 9;
    return p;
}

TEST(TraceTest, RecorderCapturesEveryOp)
{
    MicroWorkload inner(microParams());
    TraceRecorder rec(inner);
    WorkOp op;
    std::size_t count = 0;
    while (rec.next(op))
        ++count;
    EXPECT_EQ(rec.records().size(), count);
    EXPECT_GT(count, 500u); // accesses plus compute bursts
}

TEST(TraceTest, ReplayReproducesTheStream)
{
    MicroWorkload inner(microParams());
    TraceRecorder rec(inner);
    WorkOp op;
    while (rec.next(op)) {
    }

    MicroWorkload reference(microParams());
    TraceReplayWorkload replay{
        std::vector<TraceRecord>(rec.records())};
    WorkOp a, b;
    while (true) {
        const bool ra = reference.next(a);
        const bool rb = replay.next(b);
        ASSERT_EQ(ra, rb);
        if (!ra)
            break;
        EXPECT_EQ(a.kind, b.kind);
        EXPECT_EQ(a.addr, b.addr);
        EXPECT_EQ(a.size, b.size);
        if (a.kind == WorkOp::Kind::Compute) {
            EXPECT_EQ(a.count, b.count);
        }
    }
}

TEST(TraceTest, FileRoundTrip)
{
    const std::string path = "/tmp/thynvm_trace_test.trc";
    MicroWorkload inner(microParams());
    TraceRecorder rec(inner);
    WorkOp op;
    while (rec.next(op)) {
    }
    rec.save(path);

    auto replay = TraceReplayWorkload::load(path);
    EXPECT_EQ(replay.size(), rec.records().size());
    std::size_t count = 0;
    while (replay.next(op))
        ++count;
    EXPECT_EQ(count, rec.records().size());
    std::remove(path.c_str());
}

TEST(TraceTest, LoadRejectsGarbage)
{
    const std::string path = "/tmp/thynvm_trace_garbage.trc";
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[] = "this is not a trace file at all........";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
    EXPECT_THROW(TraceReplayWorkload::load(path), FatalError);
    std::remove(path.c_str());
    EXPECT_THROW(TraceReplayWorkload::load("/nonexistent/file.trc"),
                 FatalError);
}

TEST(TraceTest, ReplayedRunMatchesOriginalOnTheSameSystem)
{
    // Record a run on ThyNVM, replay it on a fresh ThyNVM system: the
    // final memory image must be identical (same op stream, same
    // deterministic store payloads... the recorder runs the *original*
    // payloads, so compare replay-vs-replay instead).
    SystemConfig cfg;
    cfg.kind = SystemKind::ThyNvm;
    cfg.phys_size = 1u << 20;
    cfg.epoch_length = 200 * kMicrosecond;
    cfg.thynvm.btt_entries = 256;
    cfg.thynvm.ptt_entries = 256;

    MicroWorkload inner(microParams());
    TraceRecorder rec(inner);
    WorkOp op;
    while (rec.next(op)) {
    }

    auto run_replay = [&](std::vector<TraceRecord> records) {
        TraceReplayWorkload wl(std::move(records));
        System sys(cfg, wl);
        sys.start();
        sys.run(kSecond);
        EXPECT_TRUE(sys.finished());
        std::vector<std::uint8_t> img(cfg.phys_size);
        sys.functionalView()(0, img.data(), img.size());
        return img;
    };

    const auto img1 = run_replay(rec.records());
    const auto img2 = run_replay(rec.records());
    EXPECT_EQ(img1, img2);
}

TEST(TraceTest, SnapshotRestoreResumesPosition)
{
    MicroWorkload inner(microParams());
    TraceRecorder rec(inner);
    WorkOp op;
    while (rec.next(op)) {
    }

    TraceReplayWorkload a{std::vector<TraceRecord>(rec.records())};
    for (int i = 0; i < 100; ++i)
        a.next(op);
    auto blob = a.snapshot();

    TraceReplayWorkload b{std::vector<TraceRecord>(rec.records())};
    b.restore(blob);
    EXPECT_EQ(b.position(), a.position());
    WorkOp oa, ob;
    while (true) {
        const bool ra = a.next(oa);
        const bool rb = b.next(ob);
        ASSERT_EQ(ra, rb);
        if (!ra)
            break;
        EXPECT_EQ(oa.addr, ob.addr);
    }
}

} // namespace
} // namespace thynvm
