/**
 * @file
 * Fast-path stat-equivalence suite: the synchronous hit fast path
 * (BlockAccessor::tryAccessFast) is a pure host-time optimization, so a
 * run with the fast path enabled must be indistinguishable — in every
 * stat, the final tick, the executed-event count, and the final memory
 * image — from the same run forced onto the per-piece event path.
 *
 * This is the contract the figure benches rely on: any divergence here
 * means the fast path changed simulated behavior, not just host speed.
 */

#include <sstream>
#include <string>
#include <vector>

#include "tests/test_util.hh"

#include "fuzz/fuzzer.hh"
#include "harness/system.hh"
#include "workloads/micro.hh"

namespace thynvm {
namespace {

struct RunResult
{
    std::string stats;
    std::vector<std::uint8_t> image;
    std::uint64_t instructions;
};

RunResult
runCell(SystemKind kind, bool fast_path, std::uint32_t access_size)
{
    MicroWorkload::Params mp;
    mp.pattern = MicroWorkload::Pattern::Random;
    mp.base = 0;
    mp.array_bytes = 8u << 20;
    mp.access_size = access_size;
    mp.read_fraction = 0.5;
    mp.total_accesses = 6000;
    mp.seed = 7;
    MicroWorkload wl(mp);

    SystemConfig cfg;
    cfg.kind = kind;
    cfg.phys_size = 16u << 20;
    cfg.epoch_length = 5 * kMillisecond;
    cfg.thynvm.btt_entries = 2048;
    cfg.thynvm.ptt_entries = 4096;
    cfg.cpu.use_fast_path = fast_path;

    System sys(cfg, wl);
    sys.start();
    sys.run(60 * kSecond);
    EXPECT_TRUE(sys.finished());

    RunResult r;
    std::ostringstream os;
    sys.dumpStats(os);
    r.stats = os.str();
    r.image.resize(mp.array_bytes);
    sys.functionalView()(mp.base, r.image.data(), r.image.size());
    r.instructions = sys.cpu().instructions();
    return r;
}

void
expectEquivalent(SystemKind kind, std::uint32_t access_size)
{
    const RunResult fast = runCell(kind, true, access_size);
    const RunResult slow = runCell(kind, false, access_size);
    EXPECT_EQ(fast.stats, slow.stats) << systemKindName(kind);
    EXPECT_EQ(fast.instructions, slow.instructions) << systemKindName(kind);
    EXPECT_TRUE(fast.image == slow.image)
        << systemKindName(kind) << ": final memory images differ";
    // Sanity: the dump carries CPU, cache, and device stats, so a
    // behavioral difference in any layer would have shown up above.
    EXPECT_NE(fast.stats.find("instructions"), std::string::npos);
    EXPECT_NE(fast.stats.find("hits"), std::string::npos);
    EXPECT_NE(fast.stats.find("write_bytes"), std::string::npos);
}

TEST(FastPathEquivalenceTest, ThyNvmBlockAccesses)
{
    expectEquivalent(SystemKind::ThyNvm, 64);
}

TEST(FastPathEquivalenceTest, ThyNvmPartialStores)
{
    // 48-byte accesses straddle block boundaries and exercise the
    // partial-store read-modify-write on both paths.
    expectEquivalent(SystemKind::ThyNvm, 48);
}

TEST(FastPathEquivalenceTest, JournalBlockAccesses)
{
    expectEquivalent(SystemKind::Journal, 64);
}

TEST(FastPathEquivalenceTest, ShadowBlockAccesses)
{
    expectEquivalent(SystemKind::Shadow, 64);
}

TEST(FastPathEquivalenceTest, IdealDramBlockAccesses)
{
    expectEquivalent(SystemKind::IdealDram, 64);
}

TEST(FastPathEquivalenceTest, IdealNvmPartialStores)
{
    expectEquivalent(SystemKind::IdealNvm, 48);
}

TEST(FastPathEquivalenceTest, MultiBlockOps)
{
    // 1KB ops span 16 blocks; the fast path collapses them into one
    // completion event per op, which must not change simulated time.
    expectEquivalent(SystemKind::ThyNvm, 1024);
}

/**
 * Crash/recovery shapes: the equivalence contract must survive power
 * failure, not just clean runs. Crash plans are expressed as (site,
 * hit ordinal, tick delta) — simulated behavior, identical in both
 * modes — so the same plan run fast and slow must crash at the same
 * tick, restore the same op count, and yield byte-identical recovered
 * and final images.
 */
void
expectCrashEquivalent(SystemKind kind, const std::string& workload)
{
    const fuzz::FuzzerConfig fc;
    const std::uint64_t seed = 1;

    const auto sites = fuzz::enumerateSites(fc, seed, workload, kind,
                                            /*fast_path=*/true);
    ASSERT_FALSE(sites.empty()) << systemKindName(kind);

    for (const auto& [site, hits] : sites) {
        fuzz::FuzzCase c;
        c.seed = seed;
        c.workload = workload;
        c.system = kind;
        c.site = site;
        c.hit = hits; // last hit: deepest into the run

        c.fast_path = true;
        const fuzz::CaseResult fast = fuzz::runCrashCase(fc, c);
        c.fast_path = false;
        const fuzz::CaseResult slow = fuzz::runCrashCase(fc, c);

        ASSERT_EQ(fast.status, fuzz::CaseStatus::Ok)
            << fast.repro << ": " << fast.detail;
        ASSERT_EQ(slow.status, fuzz::CaseStatus::Ok)
            << slow.repro << ": " << slow.detail;
        EXPECT_EQ(fast.crash_tick, slow.crash_tick) << fast.repro;
        EXPECT_EQ(fast.commits_before, slow.commits_before) << fast.repro;
        EXPECT_EQ(fast.restored_ops, slow.restored_ops) << fast.repro;
        EXPECT_TRUE(fast.recovered_image == slow.recovered_image)
            << fast.repro << ": recovered images differ fast vs slow";
        EXPECT_TRUE(fast.final_image == slow.final_image)
            << fast.repro << ": final images differ fast vs slow";
    }
}

TEST(FastPathEquivalenceTest, ThyNvmCrashRecoveryAtEverySite)
{
    // The sliding window promotes pages, reaching all 11 ThyNVM sites.
    expectCrashEquivalent(SystemKind::ThyNvm, "slide");
}

TEST(FastPathEquivalenceTest, JournalCrashRecoveryAtEverySite)
{
    expectCrashEquivalent(SystemKind::Journal, "rand");
}

TEST(FastPathEquivalenceTest, ShadowCrashRecoveryAtEverySite)
{
    expectCrashEquivalent(SystemKind::Shadow, "rand");
}

} // namespace
} // namespace thynvm
