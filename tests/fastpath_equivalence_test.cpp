/**
 * @file
 * Fast-path stat-equivalence suite: the synchronous hit fast path
 * (BlockAccessor::tryAccessFast) is a pure host-time optimization, so a
 * run with the fast path enabled must be indistinguishable — in every
 * stat, the final tick, the executed-event count, and the final memory
 * image — from the same run forced onto the per-piece event path.
 *
 * This is the contract the figure benches rely on: any divergence here
 * means the fast path changed simulated behavior, not just host speed.
 */

#include <sstream>
#include <string>
#include <vector>

#include "tests/test_util.hh"

#include "harness/system.hh"
#include "workloads/micro.hh"

namespace thynvm {
namespace {

struct RunResult
{
    std::string stats;
    std::vector<std::uint8_t> image;
    std::uint64_t instructions;
};

RunResult
runCell(SystemKind kind, bool fast_path, std::uint32_t access_size)
{
    MicroWorkload::Params mp;
    mp.pattern = MicroWorkload::Pattern::Random;
    mp.base = 0;
    mp.array_bytes = 8u << 20;
    mp.access_size = access_size;
    mp.read_fraction = 0.5;
    mp.total_accesses = 6000;
    mp.seed = 7;
    MicroWorkload wl(mp);

    SystemConfig cfg;
    cfg.kind = kind;
    cfg.phys_size = 16u << 20;
    cfg.epoch_length = 5 * kMillisecond;
    cfg.thynvm.btt_entries = 2048;
    cfg.thynvm.ptt_entries = 4096;
    cfg.cpu.use_fast_path = fast_path;

    System sys(cfg, wl);
    sys.start();
    sys.run(60 * kSecond);
    EXPECT_TRUE(sys.finished());

    RunResult r;
    std::ostringstream os;
    sys.dumpStats(os);
    r.stats = os.str();
    r.image.resize(mp.array_bytes);
    sys.functionalView()(mp.base, r.image.data(), r.image.size());
    r.instructions = sys.cpu().instructions();
    return r;
}

void
expectEquivalent(SystemKind kind, std::uint32_t access_size)
{
    const RunResult fast = runCell(kind, true, access_size);
    const RunResult slow = runCell(kind, false, access_size);
    EXPECT_EQ(fast.stats, slow.stats) << systemKindName(kind);
    EXPECT_EQ(fast.instructions, slow.instructions) << systemKindName(kind);
    EXPECT_TRUE(fast.image == slow.image)
        << systemKindName(kind) << ": final memory images differ";
    // Sanity: the dump carries CPU, cache, and device stats, so a
    // behavioral difference in any layer would have shown up above.
    EXPECT_NE(fast.stats.find("instructions"), std::string::npos);
    EXPECT_NE(fast.stats.find("hits"), std::string::npos);
    EXPECT_NE(fast.stats.find("write_bytes"), std::string::npos);
}

TEST(FastPathEquivalenceTest, ThyNvmBlockAccesses)
{
    expectEquivalent(SystemKind::ThyNvm, 64);
}

TEST(FastPathEquivalenceTest, ThyNvmPartialStores)
{
    // 48-byte accesses straddle block boundaries and exercise the
    // partial-store read-modify-write on both paths.
    expectEquivalent(SystemKind::ThyNvm, 48);
}

TEST(FastPathEquivalenceTest, JournalBlockAccesses)
{
    expectEquivalent(SystemKind::Journal, 64);
}

TEST(FastPathEquivalenceTest, ShadowBlockAccesses)
{
    expectEquivalent(SystemKind::Shadow, 64);
}

TEST(FastPathEquivalenceTest, IdealDramBlockAccesses)
{
    expectEquivalent(SystemKind::IdealDram, 64);
}

TEST(FastPathEquivalenceTest, IdealNvmPartialStores)
{
    expectEquivalent(SystemKind::IdealNvm, 48);
}

TEST(FastPathEquivalenceTest, MultiBlockOps)
{
    // 1KB ops span 16 blocks; the fast path collapses them into one
    // completion event per op, which must not change simulated time.
    expectEquivalent(SystemKind::ThyNvm, 1024);
}

} // namespace
} // namespace thynvm
