/**
 * @file
 * Unit tests for the in-order trace CPU.
 */

#include "tests/test_util.hh"

#include "cpu/cpu.hh"

namespace thynvm {
namespace {

/** Zero-latency-ish flat memory for CPU tests. */
class FlatMemory : public BlockAccessor
{
  public:
    FlatMemory(EventQueue& eq, std::size_t size, Tick latency)
        : bytes_(size, 0), eq_(eq), latency_(latency)
    {}

    void
    accessBlock(Addr paddr, bool is_write, const std::uint8_t* wdata,
                std::uint8_t* rdata, TrafficSource,
                std::function<void()> done) override
    {
        if (is_write) {
            std::memcpy(bytes_.data() + paddr, wdata, kBlockSize);
            ++writes;
        } else {
            std::memcpy(rdata, bytes_.data() + paddr, kBlockSize);
            ++reads;
        }
        if (done)
            eq_.scheduleIn(latency_, std::move(done));
    }

    void
    functionalReadBlock(Addr paddr, std::uint8_t* buf) override
    {
        std::memcpy(buf, bytes_.data() + paddr, kBlockSize);
    }

    std::vector<std::uint8_t> bytes_;
    unsigned reads = 0;
    unsigned writes = 0;

  private:
    EventQueue& eq_;
    Tick latency_;
};

/** A workload driven from an explicit op list. */
class ScriptedWorkload : public Workload
{
  public:
    bool
    next(WorkOp& op) override
    {
        if (pos_ >= script.size())
            return false;
        op = script[pos_++];
        return true;
    }

    void
    deliver(const std::uint8_t* data, std::size_t len) override
    {
        delivered.assign(data, data + len);
    }

    std::vector<WorkOp> script;
    std::vector<std::uint8_t> delivered;

  private:
    std::size_t pos_ = 0;
};

struct CpuTest : public ::testing::Test
{
    CpuTest() : mem(eq, 1 << 16, 10 * kNanosecond) {}

    void
    runAll(ScriptedWorkload& wl)
    {
        cpu = std::make_unique<TraceCpu>(eq, "cpu", TraceCpu::Params{},
                                         mem, wl);
        cpu->start();
        eq.runUntil([&] { return cpu->finished(); });
    }

    EventQueue eq;
    FlatMemory mem;
    std::unique_ptr<TraceCpu> cpu;
};

TEST_F(CpuTest, ComputeAdvancesTimeByCycles)
{
    ScriptedWorkload wl;
    WorkOp op;
    op.kind = WorkOp::Kind::Compute;
    op.count = 1000;
    wl.script.push_back(op);
    runAll(wl);
    EXPECT_EQ(cpu->instructions(), 1000u);
    EXPECT_GE(eq.now(), 1000u * 333u);
    EXPECT_LT(eq.now(), 1100u * 333u);
}

TEST_F(CpuTest, StoreThenLoadRoundTrips)
{
    std::vector<std::uint8_t> payload(kBlockSize);
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<std::uint8_t>(i * 3 + 1);

    ScriptedWorkload wl;
    WorkOp st;
    st.kind = WorkOp::Kind::Store;
    st.addr = 128;
    st.size = kBlockSize;
    st.data = payload.data();
    wl.script.push_back(st);
    WorkOp ld;
    ld.kind = WorkOp::Kind::Load;
    ld.addr = 128;
    ld.size = kBlockSize;
    wl.script.push_back(ld);
    runAll(wl);
    EXPECT_EQ(wl.delivered, payload);
    EXPECT_EQ(cpu->instructions(), 2u);
}

TEST_F(CpuTest, UnalignedLoadSpansBlocks)
{
    for (std::size_t i = 0; i < 256; ++i)
        mem.bytes_[i] = static_cast<std::uint8_t>(i);

    ScriptedWorkload wl;
    WorkOp ld;
    ld.kind = WorkOp::Kind::Load;
    ld.addr = 60; // crosses the block boundary at 64
    ld.size = 16;
    wl.script.push_back(ld);
    runAll(wl);
    ASSERT_EQ(wl.delivered.size(), 16u);
    for (std::size_t i = 0; i < 16; ++i)
        EXPECT_EQ(wl.delivered[i], static_cast<std::uint8_t>(60 + i));
    EXPECT_EQ(mem.reads, 2u);
}

TEST_F(CpuTest, PartialStoreReadModifiesWrites)
{
    for (std::size_t i = 0; i < 64; ++i)
        mem.bytes_[i] = 0xAA;

    std::vector<std::uint8_t> payload = {1, 2, 3, 4};
    ScriptedWorkload wl;
    WorkOp st;
    st.kind = WorkOp::Kind::Store;
    st.addr = 8;
    st.size = 4;
    st.data = payload.data();
    wl.script.push_back(st);
    runAll(wl);

    // Partial store = fill + merge + writeback.
    EXPECT_EQ(mem.reads, 1u);
    EXPECT_EQ(mem.writes, 1u);
    EXPECT_EQ(mem.bytes_[7], 0xAA);
    EXPECT_EQ(mem.bytes_[8], 1);
    EXPECT_EQ(mem.bytes_[11], 4);
    EXPECT_EQ(mem.bytes_[12], 0xAA);
}

TEST_F(CpuTest, LargeStoreWritesWholeBlocks)
{
    std::vector<std::uint8_t> payload(4096, 0x5A);
    ScriptedWorkload wl;
    WorkOp st;
    st.kind = WorkOp::Kind::Store;
    st.addr = 0;
    st.size = 4096;
    st.data = payload.data();
    wl.script.push_back(st);
    runAll(wl);
    EXPECT_EQ(mem.writes, 64u);
    EXPECT_EQ(mem.reads, 0u); // all pieces are full blocks
    for (std::size_t i = 0; i < 4096; ++i)
        ASSERT_EQ(mem.bytes_[i], 0x5A);
}

TEST_F(CpuTest, MemStallTimeAccrues)
{
    ScriptedWorkload wl;
    WorkOp ld;
    ld.kind = WorkOp::Kind::Load;
    ld.addr = 0;
    ld.size = kBlockSize;
    wl.script.push_back(ld);
    runAll(wl);
    EXPECT_GE(cpu->memStallTime(), 10 * kNanosecond);
}

TEST_F(CpuTest, PauseAtInstructionBoundaryAndResume)
{
    ScriptedWorkload wl;
    for (int i = 0; i < 10; ++i) {
        WorkOp op;
        op.kind = WorkOp::Kind::Compute;
        op.count = 100;
        wl.script.push_back(op);
    }
    cpu = std::make_unique<TraceCpu>(eq, "cpu", TraceCpu::Params{}, mem,
                                     wl);
    cpu->start();
    eq.run(eq.now() + 50 * 333);

    bool paused = false;
    cpu->pause([&] { paused = true; });
    eq.runUntil([&] { return paused; });
    EXPECT_FALSE(cpu->finished());
    const std::uint64_t insts_at_pause = cpu->instructions();

    // Time passes while paused; no instructions retire.
    eq.run(eq.now() + 100 * kNanosecond);
    EXPECT_EQ(cpu->instructions(), insts_at_pause);

    cpu->resume();
    eq.runUntil([&] { return cpu->finished(); });
    EXPECT_EQ(cpu->instructions(), 1000u);
    EXPECT_GE(cpu->pausedTime(), 100 * kNanosecond);
}

TEST_F(CpuTest, ArchStateRoundTrip)
{
    ScriptedWorkload wl;
    WorkOp op;
    op.kind = WorkOp::Kind::Compute;
    op.count = 7;
    wl.script.push_back(op);
    runAll(wl);

    auto blob = cpu->archState();
    TraceCpu other(eq, "cpu2", TraceCpu::Params{}, mem, wl);
    other.restoreArchState(blob);
    EXPECT_EQ(other.instructions(), 7u);
}

TEST_F(CpuTest, FinishedCallbackFires)
{
    ScriptedWorkload wl;
    WorkOp op;
    op.kind = WorkOp::Kind::Compute;
    op.count = 1;
    wl.script.push_back(op);
    cpu = std::make_unique<TraceCpu>(eq, "cpu", TraceCpu::Params{}, mem,
                                     wl);
    bool finished = false;
    cpu->setFinishedCallback([&] { finished = true; });
    cpu->start();
    eq.runUntil([&] { return cpu->finished(); });
    EXPECT_TRUE(finished);
}

} // namespace
} // namespace thynvm
