/**
 * @file
 * Units for the sparse copy-on-write store (PagedBytes / BackingStore)
 * and the Zipfian key generator.
 *
 * The store tests pin the contracts the simulator leans on: untouched
 * ranges read as zeros without materializing pages, COW copies are
 * isolated in both directions after a write, views compose offsets and
 * straddle host-page boundaries transparently, and the touched-range
 * enumeration covers exactly the bytes that can be nonzero. A final
 * group drives the same operation sequence through the paged path and
 * the THYNVM_DENSE_STORE fallback and requires byte-equal results.
 */

#include "tests/test_util.hh"

#include <cstring>
#include <map>
#include <numeric>
#include <vector>

#include "common/rng.hh"
#include "mem/backing_store.hh"
#include "mem/paged_bytes.hh"

namespace thynvm {
namespace {

std::vector<std::uint8_t>
readAll(const PagedBytes& pb)
{
    std::vector<std::uint8_t> out(pb.size());
    pb.read(0, out.data(), out.size());
    return out;
}

TEST(PagedBytes, UntouchedRangesReadZeroWithoutMaterializing)
{
    PagedBytes pb(10 * kHostPageSize);
    EXPECT_EQ(pb.touchedPageCount(), 0u);

    // Reads anywhere — including straddling page boundaries — return
    // zeros and must not allocate pages.
    std::vector<std::uint8_t> buf(3 * kHostPageSize, 0xab);
    pb.read(kHostPageSize / 2, buf.data(), buf.size());
    for (std::uint8_t b : buf)
        ASSERT_EQ(b, 0);
    EXPECT_EQ(pb.touchedPageCount(), 0u);
    EXPECT_FALSE(pb.touched(0));
}

TEST(PagedBytes, WriteMaterializesOnlyCoveredPages)
{
    PagedBytes pb(8 * kHostPageSize);
    const std::uint8_t v[3] = {1, 2, 3};
    // A write straddling pages 2|3 materializes exactly those two.
    pb.write(3 * kHostPageSize - 2, v, sizeof(v));
    EXPECT_EQ(pb.touchedPageCount(), 2u);
    EXPECT_TRUE(pb.touched(2 * kHostPageSize));
    EXPECT_TRUE(pb.touched(3 * kHostPageSize));
    EXPECT_FALSE(pb.touched(0));

    std::uint8_t got[3] = {};
    pb.read(3 * kHostPageSize - 2, got, sizeof(got));
    EXPECT_EQ(0, std::memcmp(got, v, sizeof(v)));
}

TEST(PagedBytes, CowCopyIsolatedInBothDirections)
{
    PagedBytes a(4 * kHostPageSize);
    const std::uint8_t x = 0x11;
    a.write(100, &x, 1);

    PagedBytes b(a); // COW share
    EXPECT_EQ(b.touchedPageCount(), 1u);

    // Writing the copy must not disturb the original...
    const std::uint8_t y = 0x22;
    b.write(100, &y, 1);
    std::uint8_t got = 0;
    a.read(100, &got, 1);
    EXPECT_EQ(got, 0x11);
    b.read(100, &got, 1);
    EXPECT_EQ(got, 0x22);

    // ...and writing the original must not disturb the copy, even on a
    // page the copy still shares.
    const std::uint8_t z = 0x33;
    a.write(200, &z, 1);
    b.read(200, &got, 1);
    EXPECT_EQ(got, 0);
    a.read(200, &got, 1);
    EXPECT_EQ(got, 0x33);
}

TEST(PagedBytes, ZeroFillPreservesSparsityAndClearDropsPages)
{
    PagedBytes pb(6 * kHostPageSize);
    // Zero-filling untouched space is a no-op on the page table.
    pb.fill(0, 0, pb.size());
    EXPECT_EQ(pb.touchedPageCount(), 0u);

    const std::uint8_t v = 0x5a;
    pb.write(0, &v, 1);
    pb.write(2 * kHostPageSize + 7, &v, 1);
    EXPECT_EQ(pb.touchedPageCount(), 2u);

    // clearRange drops fully covered pages back to the zero page and
    // memsets partially covered ones in place.
    pb.clearRange(0, kHostPageSize);            // full page 0: dropped
    pb.clearRange(2 * kHostPageSize, 16);       // partial page 2: memset
    EXPECT_EQ(pb.touchedPageCount(), 1u);
    std::uint8_t got = 0xff;
    pb.read(2 * kHostPageSize + 7, &got, 1);
    EXPECT_EQ(got, 0);

    pb.clear();
    EXPECT_EQ(pb.touchedPageCount(), 0u);
}

TEST(PagedBytes, TouchedRangeEnumerationIsAscendingAndExact)
{
    PagedBytes pb(10 * kHostPageSize);
    const std::uint8_t v = 1;
    pb.write(1 * kHostPageSize + 10, &v, 1);
    pb.write(4 * kHostPageSize, &v, 1);
    pb.write(7 * kHostPageSize + 100, &v, 1);

    // Clipped window [page1+20, page7+50): page 1 tail, page 4, page 7
    // head — ascending, page-clipped, nothing outside the window.
    std::vector<std::pair<Addr, std::size_t>> ranges;
    pb.forEachTouchedRange(
        1 * kHostPageSize + 20, 7 * kHostPageSize + 50,
        [&](Addr a, const std::uint8_t*, std::size_t len) {
            ranges.emplace_back(a, len);
        });
    ASSERT_EQ(ranges.size(), 3u);
    EXPECT_EQ(ranges[0].first, 1 * kHostPageSize + 20);
    EXPECT_EQ(ranges[0].second, kHostPageSize - 20);
    EXPECT_EQ(ranges[1].first, 4 * kHostPageSize);
    EXPECT_EQ(ranges[1].second, kHostPageSize);
    EXPECT_EQ(ranges[2].first, 7 * kHostPageSize);
    EXPECT_EQ(ranges[2].second, 50u);
    for (std::size_t i = 1; i < ranges.size(); ++i)
        EXPECT_LT(ranges[i - 1].first, ranges[i].first);
}

TEST(PagedBytes, DenseFallbackIsByteIdentical)
{
    // Drive the identical operation sequence through both modes and
    // compare full contents. The env var is read at construction.
    auto drive = [](PagedBytes& pb) {
        Rng rng(42);
        for (int i = 0; i < 500; ++i) {
            const Addr a = rng.below(pb.size() - 64);
            std::uint8_t buf[64];
            for (auto& b : buf)
                b = static_cast<std::uint8_t>(rng.next());
            switch (rng.below(4)) {
              case 0: pb.write(a, buf, sizeof(buf)); break;
              case 1: pb.fill(a, buf[0], 40); break;
              case 2: pb.clearRange(a, 100); break;
              default: {
                  std::uint8_t out[64];
                  pb.read(a, out, sizeof(out));
                  break;
              }
            }
        }
    };

    PagedBytes paged(5 * kHostPageSize);
    drive(paged);

    test::EnvGuard dense_env("THYNVM_DENSE_STORE", "1");
    PagedBytes dense(5 * kHostPageSize);
    EXPECT_TRUE(dense.dense());
    drive(dense);

    EXPECT_EQ(readAll(paged), readAll(dense));

    // The touched-range contract holds in both modes: rebuilding from
    // the enumeration reproduces the full contents.
    for (const PagedBytes* pb : {&paged, &dense}) {
        std::vector<std::uint8_t> rebuilt(pb->size(), 0);
        pb->forEachTouchedRange(
            0, pb->size(),
            [&](Addr a, const std::uint8_t* d, std::size_t len) {
                std::memcpy(rebuilt.data() + a, d, len);
            });
        EXPECT_EQ(rebuilt, readAll(*pb));
    }
}

TEST(BackingStore, ViewStraddlesHostPageBoundary)
{
    auto root = std::make_shared<BackingStore>(4 * kHostPageSize);
    // A view whose range crosses the page-1|page-2 boundary at an
    // unaligned offset; writes through it must land in the root.
    BackingStore view(root, kHostPageSize + kHostPageSize / 2,
                      kHostPageSize);
    std::vector<std::uint8_t> pat(kHostPageSize);
    for (std::size_t i = 0; i < pat.size(); ++i)
        pat[i] = static_cast<std::uint8_t>(i * 7 + 1);
    view.write(0, pat.data(), pat.size());

    std::vector<std::uint8_t> got(pat.size());
    root->read(kHostPageSize + kHostPageSize / 2, got.data(), got.size());
    EXPECT_EQ(got, pat);

    // And reads through the view see root writes.
    const std::uint8_t v = 0xee;
    root->write(kHostPageSize + kHostPageSize / 2 + 10, &v, 1);
    std::uint8_t b = 0;
    view.read(10, &b, 1);
    EXPECT_EQ(b, 0xee);
}

TEST(BackingStore, RootCloneIsCowIsolated)
{
    BackingStore store(4 * kHostPageSize);
    const std::uint8_t v = 0x42;
    store.write(123, &v, 1);

    auto clone = store.clone();
    // Diverge both sides; neither write may leak across.
    const std::uint8_t w1 = 0x17, w2 = 0x99;
    store.write(123, &w1, 1);
    clone->write(500, &w2, 1);

    std::uint8_t got = 0;
    clone->read(123, &got, 1);
    EXPECT_EQ(got, 0x42);
    store.read(500, &got, 1);
    EXPECT_EQ(got, 0);
}

TEST(BackingStore, ViewCloneCopiesOnlyItsRange)
{
    auto root = std::make_shared<BackingStore>(4 * kHostPageSize);
    const std::uint8_t in = 0x31, out = 0x77;
    root->write(2 * kHostPageSize + 5, &in, 1);  // inside the view
    root->write(10, &out, 1);                    // outside the view

    BackingStore view(root, 2 * kHostPageSize, kHostPageSize);
    auto clone = view.clone();
    ASSERT_EQ(clone->size(), kHostPageSize);
    std::uint8_t got = 0;
    clone->read(5, &got, 1);
    EXPECT_EQ(got, 0x31);
    // The clone is a fresh root: later root writes don't show through.
    const std::uint8_t v2 = 0x55;
    root->write(2 * kHostPageSize + 5, &v2, 1);
    clone->read(5, &got, 1);
    EXPECT_EQ(got, 0x31);
}

TEST(Zipfian, MatchesAnalyticFrequencies)
{
    const std::uint64_t n = 100;
    const double theta = 0.99;
    ZipfianGenerator zipf(n, theta);
    Rng rng(test::loggedSeed("zipfian.freq", 11));

    const std::uint64_t draws = 200000;
    std::vector<std::uint64_t> counts(n, 0);
    for (std::uint64_t i = 0; i < draws; ++i) {
        const std::uint64_t r = zipf.next(rng);
        ASSERT_LT(r, n);
        ++counts[r];
    }

    // The head ranks carry enough mass for a tight relative check
    // (rank 0 expects ~13% of draws at theta=0.99, n=100).
    for (std::uint64_t r = 0; r < 10; ++r) {
        const double expect = zipf.probability(r);
        const double got =
            static_cast<double>(counts[r]) / static_cast<double>(draws);
        EXPECT_NEAR(got, expect, 0.15 * expect)
            << "rank " << r << " frequency off: got " << got
            << " want " << expect;
    }
    // Probabilities the generator reports must themselves normalize.
    double sum = 0.0;
    for (std::uint64_t r = 0; r < n; ++r)
        sum += zipf.probability(r);
    EXPECT_NEAR(sum, 1.0, 1e-9);
    // Monotone decreasing popularity over the head.
    for (std::uint64_t r = 1; r < 10; ++r)
        EXPECT_GE(counts[r - 1], counts[r]) << "rank " << r;
}

TEST(Zipfian, ScrambledDrawsAreInRangeAndDeterministic)
{
    const std::uint64_t n = 5000;
    ZipfianGenerator zipf(n, 0.99);

    Rng a(123), b(123);
    std::map<std::uint64_t, std::uint64_t> seen;
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t ka = zipf.nextScrambled(a);
        const std::uint64_t kb = zipf.nextScrambled(b);
        ASSERT_LT(ka, n);
        // Stateless across draws: equal Rng streams give equal keys —
        // the property KvWorkload's snapshot/restore replay relies on.
        ASSERT_EQ(ka, kb);
        ++seen[ka];
    }
    // Scrambling spreads the popular ranks across the key space: the
    // hottest keys must not cluster at the low end.
    std::uint64_t hot_key = 0, hot_count = 0;
    for (const auto& [k, c] : seen) {
        if (c > hot_count) {
            hot_key = k;
            hot_count = c;
        }
    }
    EXPECT_GT(hot_key, 100u)
        << "scrambled zipfian left the hottest key at the low keys";
}

} // namespace
} // namespace thynvm
